// Package repro is a Go reproduction of "Durable Queues: The Second
// Amendment" (Gal Sela and Erez Petrank, SPAA 2021): durably
// linearizable lock-free FIFO queues for non-volatile main memory
// that execute one blocking persist operation per operation and — in
// their optimized ("second amendment") form — zero accesses to
// explicitly flushed cache lines.
//
// The persistence substrate is a simulated NVRAM (internal/pmem) that
// models CLWB/SFENCE/movnti semantics, Cascade Lake's
// flush-invalidates-line behaviour, per-cache-line crash-prefix
// semantics, Optane-like latencies, and — via pmem.HeapSet — multiple
// independent persistence domains (NUMA sockets / DIMM sets) sharing
// one power supply. On top of the queues, internal/broker composes a
// sharded, multi-topic durable message broker — the application the
// paper's introduction motivates — whose shards spread across the
// heap set under pluggable placement policies, with a heap-aware
// durable catalog and whole-broker two-phase recovery. The broker is
// administered live: Open brings up an empty (or recovered) broker
// and CreateTopic/CreateAckGroup append checksummed records to a
// durable catalog log at runtime — each creation claims its shard
// windows in a durable high-water slot allocator, initializes its
// queues, and becomes visible only with the anchor stamp's persist
// (a pinned three blocking persists of administrative cost), so a
// crash mid-creation recovers as if the create never happened while
// recovery replays committed records identically however many
// sessions created them. The lifecycle closes with DeleteTopic —
// a checksummed tombstone appended under the same ordered-persist
// discipline (two blocking persists; windows reclaimed only after
// the anchor stamp, so a torn delete recovers as "still exists") —
// a size-bucketed free list, rebuilt at recovery by replaying the
// log as an allocator simulation, that returns retired shard windows
// to later creations so churning workloads hold a steady-state NVRAM
// footprint, and CompactCatalog, which rewrites live records into a
// next-generation log region behind a single anchor flip when
// tombstone debris accumulates (doubling as the log resize path). Both
// directions amortize durability cost below the paper's
// one-fence-per-operation bound: EnqueueBatch/PublishBatch ride one
// SFENCE per publish batch, DequeueBatch/PollBatch one SFENCE per
// persistence domain per poll window (even across shards), and
// failing dequeues elide already-durable persists entirely. Acked
// topics go further, making delivery state itself durable: queues
// gain an ack mode (leased dequeues with zero persist instructions;
// one NTStore + one fence acknowledges a whole batch; recovery
// max-merges per-thread acked indices and redelivers everything
// beyond them), and the broker layers per-group durable lease records
// and lease takeover on top for exactly-once processing across both
// consumer and whole-broker crashes. Beyond FIFO order, topics come
// in delay and priority kinds (TopicConfig.Kind) backed by
// internal/dheap, a durable priority queue extending the same
// discipline to heap order: the durable state is a checksummed
// per-thread entry log while the min-heap on (key, seq) stays
// volatile and is rebuilt at recovery, so PublishAt/PublishPriority
// ride one fence per batch, pop-min (DequeueReady, gated on the
// deadline for delay topics) one fence per delivered batch, and
// sift-up/sift-down persist nothing. An optional observability layer
// (internal/obs) watches it all from plain DRAM at zero persist
// cost — per-thread allocation-free latency histograms per op,
// topic/group gauges with per-shard lag, a lock-free event trace,
// and snapshots exported as JSON or Prometheus text — at one
// predictable branch per operation when disabled. See DESIGN.md for the full
// system inventory, layering, the multi-heap topology (catalog
// layouts, membership stamps, placement policies, two-phase recovery),
// the live-administration protocol (the append-with-fence catalog
// log) and the lease/ack protocol with soundness arguments.
//
// The benchmark suite in bench_test.go regenerates every panel of the
// paper's Figure 2; the cmd/durbench tool runs the full sweeps and
// cmd/brokerbench sweeps the broker over shard counts, heap-set
// sizes (with optional per-heap asymmetric-NUMA latencies), publish
// and dequeue batch sizes, acked delivery (with optional consumer
// kills exercising lease takeover), live topic creation
// (-dyntopics, measuring fences per mid-run CreateTopic), topic
// retirement churn (-deltopics, measuring fences per mid-run
// DeleteTopic plus the recycled-window slot footprint), delay and
// priority topics (-delay/-prio, measuring fences per heap publish
// and per pop-min), and per-op
// latency percentiles (-latency, p50/p99/p999 columns); cmd/brokerstat
// dumps one observed workload's snapshot as Prometheus text or JSON.
package repro
