// Command fencecount verifies the paper's theoretical claims by
// direct measurement: it runs each queue single-threaded in steady
// state and prints the number of blocking persist operations
// (SFENCEs), asynchronous flushes, non-temporal stores and accesses
// to explicitly flushed content per operation.
//
// Expected output, per the paper:
//
//   - UnlinkedQ, LinkedQ, OptUnlinkedQ, OptLinkedQ and ONLL execute
//     exactly 1 fence per operation (the Cohen et al. lower bound);
//   - OptUnlinkedQ additionally elides the persist of repeated failing
//     dequeues (its column shows 0 fences: the observed head index was
//     already made durable by the preceding successful dequeue);
//   - OptUnlinkedQ, OptLinkedQ and ONLL additionally make 0 accesses
//     to flushed content (the second amendment / Section 2.1 optimum);
//   - DurableMSQ pays 2 fences per enqueue (3 per dequeue for the
//     detectable durable-msq-full); the generic transforms pay
//     several; all of them access flushed content.
package main

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/pmem"
	"repro/internal/queues"
)

type perOp struct {
	fences, flushes, ntstores, postflush float64
}

func measure(in queues.Info) (enq, deq, empty perOp) {
	h := pmem.New(pmem.Config{Bytes: 64 << 20, MaxThreads: 2})
	q := in.New(h, 1)
	for i := 0; i < 300; i++ {
		q.Enqueue(0, uint64(i))
	}
	for i := 0; i < 300; i++ {
		q.Dequeue(0)
	}
	q.Dequeue(0)
	const n = 1000
	base := h.TotalStats()
	for i := 0; i < n; i++ {
		q.Enqueue(0, uint64(i))
	}
	s1 := h.TotalStats()
	for i := 0; i < n; i++ {
		q.Dequeue(0)
	}
	s2 := h.TotalStats()
	for i := 0; i < n; i++ {
		q.Dequeue(0)
	}
	s3 := h.TotalStats()
	per := func(s pmem.Stats) perOp {
		return perOp{
			fences:    float64(s.Fences) / n,
			flushes:   float64(s.Flushes) / n,
			ntstores:  float64(s.NTStores) / n,
			postflush: float64(s.PostFlushAccesses) / n,
		}
	}
	return per(s1.Sub(base)), per(s2.Sub(s1)), per(s3.Sub(s2))
}

func main() {
	fmt.Printf("%-26s %31s  %31s  %31s\n", "", "enqueue", "dequeue", "failing dequeue")
	fmt.Printf("%-26s %31s  %31s  %31s\n", "queue",
		"fence flush ntst pflush", "fence flush ntst pflush", "fence flush ntst pflush")
	cell := func(s perOp) string {
		return fmt.Sprintf("%5.2f %5.2f %4.2f %6.2f", s.fences, s.flushes, s.ntstores, s.postflush)
	}
	names := []string{
		"opt-unlinked", "opt-linked", "unlinked", "unlinked-nodcas", "linked",
		"durable-msq", "durable-msq-full", "izraelevitz", "nvtraverse",
		"onefile", "redoopt", "onll", "msq",
	}
	for _, name := range names {
		in, ok := harness.LookupQueue(name)
		if !ok {
			continue
		}
		e, d, f := measure(in)
		fmt.Printf("%-26s %31s  %31s  %31s\n", name, cell(e), cell(d), cell(f))
	}
	fmt.Println("\n(pflush = accesses to explicitly flushed cache lines; the paper's")
	fmt.Println(" second amendment drives this to zero while keeping fences at 1.)")
}
