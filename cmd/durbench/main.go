// Command durbench regenerates the paper's evaluation (Figure 2): for
// each of the five workload panels it sweeps every queue across
// thread counts and prints the throughput graph, the
// ratio-to-DurableMSQ graph, and the per-operation persist statistics
// that explain them.
//
// Examples:
//
//	durbench -workload pairs -threads 1,2,4 -duration 2s
//	durbench -workload all -csv > fig2.csv
//	durbench -workload random -no-invalidate     # Ice Lake-like ablation
//	durbench -workload pairs -nvm-read-ns 600    # latency sensitivity
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/pmem"
)

func main() {
	var (
		workload    = flag.String("workload", "all", "random|pairs|enq|deq|prodcons|all")
		queuesFlag  = flag.String("queues", "", "comma-separated queue names (default: all benchmarkable queues)")
		threadsFlag = flag.String("threads", "1,2,4,8", "comma-separated thread counts")
		duration    = flag.Duration("duration", 2*time.Second, "duration of timed workloads")
		prefill     = flag.Int("prefill", 1_000_000, "initial queue size for the dequeue-only workload (paper: 12M)")
		ops         = flag.Int("ops", 100_000, "ops per thread per phase for producers-consumers (paper: 1M)")
		heapMB      = flag.Int64("heap-mb", 0, "persistent heap size in MiB (0 = auto)")
		nvmReadNs   = flag.Int64("nvm-read-ns", 300, "NVRAM read latency charged on access to flushed lines")
		fenceNs     = flag.Int64("fence-ns", 120, "SFENCE latency")
		noInval     = flag.Bool("no-invalidate", false, "model flushes that retain cache lines (future-platform ablation)")
		csvOut      = flag.Bool("csv", false, "emit CSV instead of tables")
		seed        = flag.Int64("seed", 1, "workload RNG seed")
		ablations   = flag.Bool("ablations", false, "include ablation variants (warning: linked-naive is O(queue length) per enqueue; avoid unbounded workloads)")
	)
	flag.Parse()

	threadCounts, err := parseInts(*threadsFlag)
	if err != nil {
		fatal(err)
	}
	var queueNames []string
	if *queuesFlag == "" {
		for _, in := range harness.AllQueues() {
			if in.Ablation && !*ablations {
				continue
			}
			queueNames = append(queueNames, in.Name)
		}
	} else {
		queueNames = strings.Split(*queuesFlag, ",")
	}

	lat := pmem.DefaultLatency()
	lat.NVMReadNs = *nvmReadNs
	lat.FenceNs = *fenceNs

	var wls []harness.Workload
	if *workload == "all" {
		wls = harness.Workloads()
	} else {
		w, err := harness.ParseWorkload(*workload)
		if err != nil {
			fatal(err)
		}
		wls = []harness.Workload{w}
	}

	for _, wl := range wls {
		base := harness.Config{
			Workload:         wl,
			Duration:         *duration,
			OpsPerThread:     *ops,
			HeapBytes:        *heapMB << 20,
			Latency:          lat,
			FlushRetainsLine: *noInval,
			Seed:             *seed,
		}
		switch wl {
		case harness.WorkloadDeqOnly:
			base.InitialSize = *prefill
			if base.Duration > time.Second {
				base.Duration = time.Second // the paper runs this panel for 1s
			}
		case harness.WorkloadEnqOnly:
			base.InitialSize = 0
		default:
			base.InitialSize = 10
		}
		results, err := harness.Sweep(base, queueNames, threadCounts)
		if err != nil {
			fatal(err)
		}
		title := fmt.Sprintf("[%s] initial=%d", wl.Name(), base.InitialSize)
		if *csvOut {
			fmt.Print(harness.CSV(results))
			continue
		}
		fmt.Println(harness.ThroughputTable(title, threadCounts, results))
		fmt.Println(harness.RatioTable(title, "durable-msq", threadCounts, results))
		fmt.Println(harness.StatsTable(title, threadCounts, results))
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad thread count %q: %w", f, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "durbench:", err)
	os.Exit(1)
}
