// Command benchguard compares a fresh brokerbench -json sweep against
// the checked-in BENCH_broker.json baseline and exits non-zero when a
// guarded metric regressed beyond tolerance — the CI tripwire that
// keeps fences/msg and tail latency from quietly creeping up.
//
// Rows are matched by their workload dimensions (topics, shards,
// heaps, producers, consumers, batch, dbatch, payload, ack, abatch,
// pipeline, poller, pgap_ns, kills, churn, dyn_topics, del_topics,
// delay_topics, prio_topics);
// rows decode generically, so a baseline written before a dimension
// existed matches candidates where the new dimension is zero. Guarded
// metrics:
//
//   - prod_fences_per_msg, cons_fences_per_msg, ack_fences_per_msg,
//     del_fences_per_delete, heap_fences_per_publish,
//     heap_fences_per_pop: fail when candidate >
//     baseline*(1+fence-tol) + 0.02. Fence ratios are nearly
//     deterministic per workload (a topic retirement is two blocking
//     persists unless a cycle happens to absorb a compaction; a heap
//     topic publishes one fence per batch window and consumes one per
//     non-empty pop-min batch), so the tolerance is tight.
//   - soj_p99_us (publish sojourn p99, the tail-latency headline):
//     guarded *within the candidate sweep*, not against the baseline.
//     For every idle cell (pgap_ns > 0) with abatch=1, the matching
//     abatch=0 cell from the same sweep must have a worse p99:
//     adaptive <= fixed * tail-factor. Comparing two cells of one run
//     self-normalizes the machine's scheduler noise, which makes
//     absolute cross-run quantile comparison useless (the same cell
//     honestly varies 0.5ms–13ms between runs), while the regression
//     this exists to catch — losing adaptive batching on an idle
//     topic — is structural: fixed windows hold messages for ~7
//     arrival gaps (36ms at the baseline settings), far above any
//     noise-smeared adaptive tail observed (13ms). The per-op
//     pub_p99_us is NOT guarded: idle cells collect too few op
//     samples for a stable p99.
//
// Baseline rows missing from the candidate are an error (the sweep
// shrank: the guard would silently stop guarding them); extra
// candidate rows are ignored.
//
// Example (the CI step):
//
//	go run ./cmd/brokerbench <baseline flags> -json > sweep.json
//	go run ./cmd/benchguard -baseline BENCH_broker.json -candidate sweep.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// dimKeys are the workload dimensions that identify a sweep cell.
// Absent keys read as 0, so old baselines match new sweeps where the
// added dimension is off.
var dimKeys = []string{
	"topics", "shards", "heaps", "producers", "consumers",
	"batch", "dbatch", "payload", "ack",
	"abatch", "pipeline", "poller", "pgap_ns",
	"kills", "churn", "dyn_topics", "del_topics",
	"delay_topics", "prio_topics",
}

type sweep struct {
	Rows []map[string]any `json:"rows"`
}

func load(path string) ([]map[string]any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s sweep
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Rows) == 0 {
		return nil, fmt.Errorf("%s: no rows", path)
	}
	return s.Rows, nil
}

func num(r map[string]any, k string) float64 {
	if v, ok := r[k].(float64); ok {
		return v
	}
	return 0
}

func key(r map[string]any) string {
	parts := make([]string, len(dimKeys))
	for i, k := range dimKeys {
		parts[i] = fmt.Sprintf("%s=%g", k, num(r, k))
	}
	return strings.Join(parts, " ")
}

func main() {
	var (
		basePath   = flag.String("baseline", "BENCH_broker.json", "checked-in baseline sweep (brokerbench -json)")
		candPath   = flag.String("candidate", "sweep.json", "fresh sweep to judge (brokerbench -json)")
		fenceTol   = flag.Float64("fence-tol", 0.15, "relative tolerance on fences/msg metrics")
		tailFactor = flag.Float64("tail-factor", 0.75, "idle adaptive sojourn p99 must be <= fixed p99 times this")
	)
	flag.Parse()

	base, err := load(*basePath)
	if err != nil {
		fatal(err)
	}
	cand, err := load(*candPath)
	if err != nil {
		fatal(err)
	}
	candBy := make(map[string]map[string]any, len(cand))
	for _, r := range cand {
		candBy[key(r)] = r
	}

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}
	checked := 0
	var keys []string
	rowBy := make(map[string]map[string]any, len(base))
	for _, b := range base {
		k := key(b)
		keys = append(keys, k)
		rowBy[k] = b
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := rowBy[k]
		c, ok := candBy[k]
		if !ok {
			fail("row missing from candidate sweep: %s", k)
			continue
		}
		checked++
		for _, m := range []string{"prod_fences_per_msg", "cons_fences_per_msg", "ack_fences_per_msg", "del_fences_per_delete",
			"heap_fences_per_publish", "heap_fences_per_pop"} {
			bv, cv := num(b, m), num(c, m)
			if limit := bv*(1+*fenceTol) + 0.02; cv > limit {
				fail("%s regressed: %.4f -> %.4f (limit %.4f) at %s", m, bv, cv, limit, k)
			}
		}
	}

	// Tail guard: within the candidate sweep, every idle adaptive cell
	// must beat its fixed-window twin on sojourn p99.
	tailPairs := 0
	for _, c := range cand {
		if num(c, "pgap_ns") <= 0 || num(c, "abatch") != 1 {
			continue
		}
		twin := make(map[string]any, len(c))
		for _, dk := range dimKeys {
			twin[dk] = num(c, dk)
		}
		twin["abatch"] = float64(0)
		f, ok := candBy[key(twin)]
		if !ok {
			continue // sweep has no fixed twin for this cell
		}
		tailPairs++
		av, fv := num(c, "soj_p99_us"), num(f, "soj_p99_us")
		if av > fv**tailFactor {
			fail("idle adaptive soj_p99_us %.1fµs not <= %.0f%% of fixed %.1fµs at %s",
				av, *tailFactor*100, fv, key(c))
		}
	}
	if tailPairs == 0 {
		fail("no idle adaptive/fixed cell pairs in candidate sweep: tail guard did not run")
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d regression(s) across %d checked row(s):\n", len(failures), checked)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, " -", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d rows within fence tolerance %.0f%%, %d idle tail pair(s) within factor %.2f\n",
		checked, *fenceTol*100, tailPairs, *tailFactor)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
