// Command brokerbench sweeps the sharded durable message broker
// (internal/broker) over shard counts and publish batch sizes and
// prints throughput plus the per-message persist statistics that
// justify the design: the batch-publish path rides one SFENCE per
// batch, so producer fences per message drop toward 1/batch while the
// per-message path pays the paper's one-fence-per-operation bound.
//
// Examples:
//
//	brokerbench -shards 1,2,4,8 -batch 1,16
//	brokerbench -topics 4 -producers 8 -consumers 4 -payload 64
//	brokerbench -nvm-fence-ns 500        # Optane-like fence cost
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/pmem"
)

func main() {
	var (
		topics    = flag.Int("topics", 2, "number of topics")
		shardsF   = flag.String("shards", "1,2,4,8", "comma-separated shard counts per topic to sweep")
		producers = flag.Int("producers", 4, "producer threads")
		consumers = flag.Int("consumers", 2, "consumer threads")
		batchF    = flag.String("batch", "1,16", "comma-separated publish batch sizes to sweep")
		payload   = flag.Int("payload", 0, "payload bytes (0 = fixed 8-byte messages)")
		duration  = flag.Duration("duration", time.Second, "produce phase duration per cell")
		heapMB    = flag.Int64("heap-mb", 512, "persistent heap size in MiB")
		fenceNs   = flag.Int64("nvm-fence-ns", 120, "SFENCE latency")
		csvOut    = flag.Bool("csv", false, "emit CSV instead of a table")
	)
	flag.Parse()

	shardCounts, err := parseInts(*shardsF)
	if err != nil {
		fatal(err)
	}
	batches, err := parseInts(*batchF)
	if err != nil {
		fatal(err)
	}
	lat := pmem.DefaultLatency()
	lat.FenceNs = *fenceNs

	if *csvOut {
		fmt.Println("topics,shards,producers,consumers,batch,payload,published,delivered,mops,prod_fences_per_msg,cons_fences_per_msg")
	} else {
		fmt.Printf("broker sweep: topics=%d producers=%d consumers=%d payload=%dB duration=%v\n\n",
			*topics, *producers, *consumers, *payload, *duration)
		fmt.Printf("%7s %6s %12s %12s %10s %15s %15s\n",
			"shards", "batch", "published", "delivered", "Mops", "prod-fence/msg", "cons-fence/msg")
	}
	for _, shards := range shardCounts {
		for _, batch := range batches {
			r, err := harness.RunBroker(harness.BrokerConfig{
				Topics:    *topics,
				Shards:    shards,
				Producers: *producers,
				Consumers: *consumers,
				Batch:     batch,
				Payload:   *payload,
				Duration:  *duration,
				HeapBytes: *heapMB << 20,
				Latency:   lat,
			})
			if err != nil {
				fatal(err)
			}
			if *csvOut {
				fmt.Printf("%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%.4f,%.4f\n",
					r.Topics, r.Shards, r.Producers, r.Consumers, r.Batch, r.Payload,
					r.Published, r.Delivered, r.Mops(),
					r.ProducerFencesPerMsg(), r.ConsumerFencesPerMsg())
			} else {
				fmt.Printf("%7d %6d %12d %12d %10.3f %15.4f %15.4f\n",
					r.Shards, r.Batch, r.Published, r.Delivered, r.Mops(),
					r.ProducerFencesPerMsg(), r.ConsumerFencesPerMsg())
			}
		}
	}
	if !*csvOut {
		fmt.Println("\n(prod-fence/msg: blocking persists per published message — ~1 on the")
		fmt.Println(" per-message path, ~1/batch on the amortized batch-publish path.)")
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad count %q: %w", f, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "brokerbench:", err)
	os.Exit(1)
}
