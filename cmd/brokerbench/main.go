// Command brokerbench sweeps the sharded durable message broker
// (internal/broker) over shard counts, heap-set sizes, publish batch
// sizes and dequeue batch sizes, and prints throughput plus the
// per-message persist statistics that justify the design: the
// batch-publish path rides one SFENCE per batch, so producer fences
// per message drop toward 1/batch, and the batch-dequeue path
// (PollBatch) mirrors it on the consume side — one fence per
// persistence domain covers a whole poll batch even when it spans
// several shards, so consumer fences per message drop toward 1/dbatch.
// The idle column shows the empty-poll fence elision: a consumer
// polling only empty shards at an already-persisted head index issues
// no persists at all (~0 fences per idle poll, where each poll scans
// every owned shard). The heap-imbal column shows how evenly shard
// placement spread persist traffic across the heap set (1.0 =
// balanced); -affine switches to block placement plus heap-affine
// consumer groups so each consumer fences a single domain. -latency
// attaches an obs.Observer (costing no persist instructions) and adds
// p50/p99/p999 per-op latency columns — publish, poll (non-empty) and
// ack — in microseconds; without the flag the latency columns are
// zero in -csv/-json and omitted from the table.
//
// The tail-latency dimensions sweep like -ack: -abatch swaps the fixed
// publish/drain window sizes for AIMD policies adapting between 1 and
// batch/dbatch, -pipeline defers each publish window's fence into the
// next flush (and, with -poller in ack cells, acks via AckAsync), and
// -poller runs consumers as backoff event loops instead of busy
// spinners. -pgap spaces producer arrivals to model an idle topic; any
// non-zero gap routes producers through the buffering Publisher so the
// soj-µs columns — the publish *sojourn* from a message's arrival to
// its durable acknowledgment, reported regardless of -latency — show
// what batching policy does to an idle topic's tail.
//
// -delay and -prio add heap-backed topics beside the FIFO sweep: a
// dedicated thread durably publishes batch-sized windows (deadlines /
// ranks off a logical clock) and pops the ready backlog in dbatch-sized
// batches, and the heap-f(pub/pop) column shows the two pinned
// amortization ratios — one fence per publish window (~1/batch per
// message) and one per non-empty pop-min batch (~1/dbatch), with heap
// maintenance persisting nothing.
//
// Examples:
//
//	brokerbench -shards 1,2,4,8 -batch 1,16 -dbatch 1,8
//	brokerbench -delay 2 -prio 2 -batch 8 -dbatch 8  # heap topics: fences per publish/pop
//	brokerbench -batch 8 -dbatch 8 -abatch 0,1 -pgap 200000  # idle tail: fixed vs adaptive
//	brokerbench -batch 8 -pipeline 0,1           # pipelined persists
//	brokerbench -ack 1 -poller 1 -pipeline 1     # event-loop consumers, async acks
//	brokerbench -heaps 1,2,4              # sweep NVRAM domains
//	brokerbench -heaps 2 -affine          # heap-affine consumers
//	brokerbench -heaps 2 -heaplat 100,300  # asymmetric NUMA: per-heap fence ns
//	brokerbench -dyntopics 4              # create topics mid-run, measure fences/create
//	brokerbench -deltopics 4              # churn create→delete cycles, measure fences/delete + footprint
//	brokerbench -ack 0,1                  # acked/leased delivery vs at-least-once
//	brokerbench -ack 1 -kills 1 -consumers 3  # consumer crash + lease takeover
//	brokerbench -ack 1 -churn 2 -consumers 3  # membership churn: stalls, splits, steals
//	brokerbench -topics 4 -producers 8 -consumers 4 -payload 64
//	brokerbench -nvm-fence-ns 500        # Optane-like fence cost
//	brokerbench -latency                 # per-op p50/p99/p999 latency columns
//	brokerbench -csv  > sweep.csv        # machine-readable, one row per cell
//	brokerbench -shards 4 -heaps 2 -heaplat 120,480 -batch 8 -dbatch 8 -consumers 3 -ack 0,1 -abatch 0,1 -pipeline 0,1 -poller 0,1 -pgap 0,200000 -dyntopics 2 -deltopics 2 -duration 250ms -latency -json > BENCH_broker.json # refresh the repo baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/pmem"
)

// row is one sweep cell in the machine-readable outputs (-csv, -json).
type row struct {
	Topics            int     `json:"topics"`
	Shards            int     `json:"shards"`
	Heaps             int     `json:"heaps"`
	Producers         int     `json:"producers"`
	Consumers         int     `json:"consumers"`
	Batch             int     `json:"batch"`
	DequeueBatch      int     `json:"dbatch"`
	Payload           int     `json:"payload"`
	Ack               int     `json:"ack"`
	AdaptiveBatch     int     `json:"abatch"`
	Pipeline          int     `json:"pipeline"`
	Poller            int     `json:"poller"`
	ProduceGapNs      int64   `json:"pgap_ns"`
	Kills             int     `json:"kills"`
	Churn             int     `json:"churn"`
	DynTopics         int     `json:"dyn_topics"`
	DelTopics         int     `json:"del_topics"`
	DelayTopics       int     `json:"delay_topics"`
	PrioTopics        int     `json:"prio_topics"`
	Published         uint64  `json:"published"`
	Delivered         uint64  `json:"delivered"`
	Mops              float64 `json:"mops"`
	ProdFencesPerMsg  float64 `json:"prod_fences_per_msg"`
	ConsFencesPerMsg  float64 `json:"cons_fences_per_msg"`
	AckFencesPerMsg   float64 `json:"ack_fences_per_msg"`
	RedeliveryRate    float64 `json:"redelivery_rate"`
	FencedAcks        uint64  `json:"fenced_acks"`
	Reassigned        uint64  `json:"reassigned_shards"`
	Stolen            uint64  `json:"stolen_shards"`
	Scans             uint64  `json:"scans"`
	IdleFencesPerPoll float64 `json:"idle_fences_per_poll"`
	HeapImbalance     float64 `json:"heap_imbalance"`
	DynFencesPerNew   float64 `json:"dyn_fences_per_create"`
	DelFencesPerDel   float64 `json:"del_fences_per_delete"`
	HeapPublished     uint64  `json:"heap_published"`
	HeapPopped        uint64  `json:"heap_popped"`
	HeapFencesPerPub  float64 `json:"heap_fences_per_publish"`
	HeapFencesPerPop  float64 `json:"heap_fences_per_pop"`
	SlotsUsed         int     `json:"slots_used"`
	SlotsFree         int     `json:"slots_free"`
	PollerSleeps      uint64  `json:"poller_sleeps"`
	PollerWakes       uint64  `json:"poller_wakes"`

	// Publish sojourn (arrival → durable acknowledgment) quantiles in
	// microseconds — the tail a client of the topic experiences,
	// including Publisher buffering and pipelined acknowledgment lag.
	// Measured by the harness itself, so present without -latency.
	SojP50Us  float64 `json:"soj_p50_us"`
	SojP99Us  float64 `json:"soj_p99_us"`
	SojP999Us float64 `json:"soj_p999_us"`

	// Per-op latency quantiles in microseconds, zero without -latency
	// (the columns stay in the CSV/JSON shape either way, so baselines
	// diff cleanly across the flag).
	PubP50Us   float64 `json:"pub_p50_us"`
	PubP99Us   float64 `json:"pub_p99_us"`
	PubP999Us  float64 `json:"pub_p999_us"`
	PollP50Us  float64 `json:"poll_p50_us"`
	PollP99Us  float64 `json:"poll_p99_us"`
	PollP999Us float64 `json:"poll_p999_us"`
	AckP50Us   float64 `json:"ack_p50_us"`
	AckP99Us   float64 `json:"ack_p99_us"`
	AckP999Us  float64 `json:"ack_p999_us"`
}

func main() {
	var (
		topics    = flag.Int("topics", 2, "number of topics")
		shardsF   = flag.String("shards", "1,2,4,8", "comma-separated shard counts per topic to sweep")
		heapsF    = flag.String("heaps", "1", "comma-separated heap-set sizes to sweep (NVRAM domains)")
		affine    = flag.Bool("affine", false, "heap-affine deployment: block placement + affine consumer groups")
		producers = flag.Int("producers", 4, "producer threads")
		consumers = flag.Int("consumers", 2, "consumer threads")
		batchF    = flag.String("batch", "1,16", "comma-separated publish batch sizes to sweep")
		dbatchF   = flag.String("dbatch", "1,8", "comma-separated dequeue (poll) batch sizes to sweep")
		ackF      = flag.String("ack", "0", "comma-separated ack modes to sweep (0 = at-least-once, 1 = acked/leased delivery)")
		abatchF   = flag.String("abatch", "0", "comma-separated adaptive-batch modes to sweep (0 = fixed windows, 1 = AIMD)")
		pipeF     = flag.String("pipeline", "0", "comma-separated pipeline modes to sweep (0 = fence per flush, 1 = fence deferred into next flush)")
		pollerF   = flag.String("poller", "0", "comma-separated consumer modes to sweep (0 = busy poll loop, 1 = backoff event loop)")
		pgapF     = flag.String("pgap", "0", "comma-separated ns between message arrivals per producer to sweep (0 = saturating; >0 models an idle topic)")
		kills     = flag.Int("kills", 0, "consumers killed mid-run in ack cells (redeliveries via lease takeover)")
		churn     = flag.Int("churn", 0, "membership-churn cycles in ack cells (stall + forced split or work-stealing; needs >= 2 consumers)")
		dyn       = flag.Int("dyntopics", 0, "topics created on the live broker mid-run (fences/create in the dyn column)")
		del       = flag.Int("deltopics", 0, "create→delete cycles of a scratch topic mid-run (fences/delete + slot footprint columns)")
		delay     = flag.Int("delay", 0, "delay (deadline-ordered heap) topics driven by a dedicated thread (heap-f columns)")
		prio      = flag.Int("prio", 0, "priority (rank-ordered heap) topics driven by a dedicated thread (heap-f columns)")
		heaplatF  = flag.String("heaplat", "", "comma-separated per-heap SFENCE ns (asymmetric NUMA; heap i takes entry i mod len)")
		payload   = flag.Int("payload", 0, "payload bytes (0 = fixed 8-byte messages)")
		duration  = flag.Duration("duration", time.Second, "produce phase duration per cell")
		heapMB    = flag.Int64("heap-mb", 512, "persistent heap size in MiB")
		fenceNs   = flag.Int64("nvm-fence-ns", 120, "SFENCE latency")
		latency   = flag.Bool("latency", false, "attach an observer and report per-op p50/p99/p999 latencies (µs)")
		csvOut    = flag.Bool("csv", false, "emit CSV instead of a table")
		jsonOut   = flag.Bool("json", false, "emit JSON (the BENCH_broker.json baseline shape)")
	)
	flag.Parse()

	if *csvOut && *jsonOut {
		fatal(fmt.Errorf("-csv and -json are mutually exclusive"))
	}
	shardCounts, err := parseInts(*shardsF)
	if err != nil {
		fatal(err)
	}
	heapCounts, err := parseInts(*heapsF)
	if err != nil {
		fatal(err)
	}
	batches, err := parseInts(*batchF)
	if err != nil {
		fatal(err)
	}
	dbatches, err := parseInts(*dbatchF)
	if err != nil {
		fatal(err)
	}
	ackModes, err := parseInts(*ackF)
	if err != nil {
		fatal(err)
	}
	abatchModes, err := parseInts(*abatchF)
	if err != nil {
		fatal(err)
	}
	pipeModes, err := parseInts(*pipeF)
	if err != nil {
		fatal(err)
	}
	pollerModes, err := parseInts(*pollerF)
	if err != nil {
		fatal(err)
	}
	pgaps, err := parseInts(*pgapF)
	if err != nil {
		fatal(err)
	}
	lat := pmem.DefaultLatency()
	lat.FenceNs = *fenceNs
	var heapLat []int64
	if *heaplatF != "" {
		ns, err := parseInts(*heaplatF)
		if err != nil {
			fatal(err)
		}
		for _, n := range ns {
			heapLat = append(heapLat, int64(n))
		}
	}

	if *csvOut {
		fmt.Println("topics,shards,heaps,producers,consumers,batch,dbatch,payload,ack,abatch,pipeline,poller,pgap_ns,kills,churn,dyn_topics,del_topics,delay_topics,prio_topics,published,delivered,mops,prod_fences_per_msg,cons_fences_per_msg,ack_fences_per_msg,redelivery_rate,fenced_acks,reassigned_shards,stolen_shards,scans,idle_fences_per_poll,heap_imbalance,dyn_fences_per_create,del_fences_per_delete,heap_published,heap_popped,heap_fences_per_publish,heap_fences_per_pop,slots_used,slots_free,poller_sleeps,poller_wakes,soj_p50_us,soj_p99_us,soj_p999_us,pub_p50_us,pub_p99_us,pub_p999_us,poll_p50_us,poll_p99_us,poll_p999_us,ack_p50_us,ack_p99_us,ack_p999_us")
	} else if !*jsonOut {
		fmt.Printf("broker sweep: topics=%d producers=%d consumers=%d payload=%dB affine=%v kills=%d churn=%d dyntopics=%d deltopics=%d delay=%d prio=%d heaplat=%q pgap=%q latency=%v duration=%v\n\n",
			*topics, *producers, *consumers, *payload, *affine, *kills, *churn, *dyn, *del, *delay, *prio, *heaplatF, *pgapF, *latency, *duration)
		fmt.Printf("%7s %6s %6s %7s %4s %8s %9s %12s %12s %10s %15s %15s %14s %9s %12s %10s %10s %12s %12s %16s %12s %20s",
			"shards", "heaps", "batch", "dbatch", "ack", "ab/pl/po", "pgap-ns", "published", "delivered", "Mops",
			"prod-fence/msg", "cons-fence/msg", "ack-fence/msg", "redeliv", "churn(f/r/s)", "idle-f/poll", "heap-imbal", "dyn-f/create", "del-f/delete", "heap-f(pub/pop)", "slots(u/f)", "soj-µs(50/99/999)")
		if *latency {
			fmt.Printf(" %20s %20s %20s", "pub-µs(50/99/999)", "poll-µs(50/99/999)", "ack-µs(50/99/999)")
		}
		fmt.Println()
	}
	var rows []row
	for _, shards := range shardCounts {
		for _, heaps := range heapCounts {
			for _, batch := range batches {
				for _, dbatch := range dbatches {
					for _, ack := range ackModes {
						for _, abatch := range abatchModes {
							for _, pipe := range pipeModes {
								for _, poller := range pollerModes {
									for _, pg := range pgaps {
										cellKills, cellChurn := 0, 0
										if ack != 0 && poller == 0 {
											cellKills = *kills
											cellChurn = *churn
										}
										r, err := harness.RunBroker(harness.BrokerConfig{
											Topics:        *topics,
											Shards:        shards,
											Heaps:         heaps,
											Affine:        *affine,
											Producers:     *producers,
											Consumers:     *consumers,
											Batch:         batch,
											DequeueBatch:  dbatch,
											Payload:       *payload,
											Ack:           ack != 0,
											Kills:         cellKills,
											Churn:         cellChurn,
											AdaptiveBatch: abatch != 0,
											Pipeline:      pipe != 0,
											Poller:        poller != 0,
											ProduceGapNs:  int64(pg),
											DynTopics:     *dyn,
											DelTopics:     *del,
											DelayTopics:   *delay,
											PrioTopics:    *prio,
											Duration:      *duration,
											HeapBytes:     *heapMB << 20,
											Latency:       lat,
											HeapFenceNs:   heapLat,
											Observe:       *latency,
										})
										if err != nil {
											fatal(err)
										}
										c := row{
											Topics: r.Topics, Shards: r.Shards, Heaps: r.Heaps,
											Producers: r.Producers, Consumers: r.Consumers,
											Batch: r.Batch, DequeueBatch: r.DequeueBatch, Payload: r.Payload,
											ProduceGapNs: r.ProduceGapNs,
											Kills:        r.Kills, Churn: r.Churn,
											DynTopics:   int(r.DynTopics),
											DelTopics:   int(r.DelTopics),
											DelayTopics: r.DelayTopics,
											PrioTopics:  r.PrioTopics,
											Published:   r.Published, Delivered: r.Delivered,
											Mops:              round3(r.Mops()),
											ProdFencesPerMsg:  round4(r.ProducerFencesPerMsg()),
											ConsFencesPerMsg:  round4(r.ConsumerFencesPerMsg()),
											AckFencesPerMsg:   round4(r.AckFencesPerMsg()),
											RedeliveryRate:    round4(r.RedeliveryRate()),
											FencedAcks:        r.FencedAcks,
											Reassigned:        r.Reassigned,
											Stolen:            r.Stolen,
											Scans:             r.Scans,
											IdleFencesPerPoll: round4(r.IdleFencesPerPoll()),
											HeapImbalance:     round3(r.HeapImbalance()),
											DynFencesPerNew:   round3(r.DynFencesPerCreate()),
											DelFencesPerDel:   round3(r.DelFencesPerDelete()),
											HeapPublished:     r.HeapPublished,
											HeapPopped:        r.HeapPopped,
											HeapFencesPerPub:  round4(r.HeapFencesPerPublish()),
											HeapFencesPerPop:  round4(r.HeapFencesPerPop()),
											SlotsUsed:         r.SlotsUsed,
											SlotsFree:         r.SlotsFree,
											PollerSleeps:      r.PollerSleeps,
											PollerWakes:       r.PollerWakes,
										}
										if r.Ack {
											c.Ack = 1
										}
										if r.AdaptiveBatch {
											c.AdaptiveBatch = 1
										}
										if r.Pipeline {
											c.Pipeline = 1
										}
										if r.Poller {
											c.Poller = 1
										}
										c.SojP50Us, c.SojP99Us, c.SojP999Us = usQuantiles(
											r.PubSojournP50Ns, r.PubSojournP99Ns, r.PubSojournP999Ns)
										if *latency {
											c.PubP50Us, c.PubP99Us, c.PubP999Us = usQuantiles(r.PublishQuantiles())
											c.PollP50Us, c.PollP99Us, c.PollP999Us = usQuantiles(r.PollQuantiles())
											c.AckP50Us, c.AckP99Us, c.AckP999Us = usQuantiles(r.AckQuantiles())
										}
										rows = append(rows, c)
										if *csvOut {
											fmt.Printf("%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%.4f,%.4f,%.4f,%.4f,%d,%d,%d,%d,%.4f,%.3f,%.3f,%.3f,%d,%d,%.4f,%.4f,%d,%d,%d,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
												c.Topics, c.Shards, c.Heaps, c.Producers, c.Consumers, c.Batch, c.DequeueBatch, c.Payload,
												c.Ack, c.AdaptiveBatch, c.Pipeline, c.Poller, c.ProduceGapNs,
												c.Kills, c.Churn, c.DynTopics, c.DelTopics, c.DelayTopics, c.PrioTopics,
												c.Published, c.Delivered, c.Mops,
												c.ProdFencesPerMsg, c.ConsFencesPerMsg, c.AckFencesPerMsg, c.RedeliveryRate,
												c.FencedAcks, c.Reassigned, c.Stolen, c.Scans,
												c.IdleFencesPerPoll, c.HeapImbalance, c.DynFencesPerNew,
												c.DelFencesPerDel, c.HeapPublished, c.HeapPopped,
												c.HeapFencesPerPub, c.HeapFencesPerPop,
												c.SlotsUsed, c.SlotsFree,
												c.PollerSleeps, c.PollerWakes,
												c.SojP50Us, c.SojP99Us, c.SojP999Us,
												c.PubP50Us, c.PubP99Us, c.PubP999Us,
												c.PollP50Us, c.PollP99Us, c.PollP999Us,
												c.AckP50Us, c.AckP99Us, c.AckP999Us)
										} else if !*jsonOut {
											fmt.Printf("%7d %6d %6d %7d %4d %8s %9d %12d %12d %10.3f %15.4f %15.4f %14.4f %9.4f %12s %10.4f %10.3f %12.3f %12.3f %16s %12s %20s",
												c.Shards, c.Heaps, c.Batch, c.DequeueBatch, c.Ack,
												fmt.Sprintf("%d/%d/%d", c.AdaptiveBatch, c.Pipeline, c.Poller),
												c.ProduceGapNs, c.Published, c.Delivered, c.Mops,
												c.ProdFencesPerMsg, c.ConsFencesPerMsg, c.AckFencesPerMsg, c.RedeliveryRate,
												fmt.Sprintf("%d/%d/%d", c.FencedAcks, c.Reassigned, c.Stolen),
												c.IdleFencesPerPoll, c.HeapImbalance, c.DynFencesPerNew,
												c.DelFencesPerDel,
												fmt.Sprintf("%.4f/%.4f", c.HeapFencesPerPub, c.HeapFencesPerPop),
												fmt.Sprintf("%d/%d", c.SlotsUsed, c.SlotsFree),
												latCell(c.SojP50Us, c.SojP99Us, c.SojP999Us))
											if *latency {
												fmt.Printf(" %20s %20s %20s",
													latCell(c.PubP50Us, c.PubP99Us, c.PubP999Us),
													latCell(c.PollP50Us, c.PollP99Us, c.PollP999Us),
													latCell(c.AckP50Us, c.AckP99Us, c.AckP999Us))
											}
											fmt.Println()
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"workload": "brokerbench",
			"config": map[string]any{
				"topics": *topics, "producers": *producers, "consumers": *consumers,
				"payload": *payload, "affine": *affine, "kills": *kills,
				"churn": *churn, "dyntopics": *dyn, "deltopics": *del,
				"delay": *delay, "prio": *prio, "heaplat": *heaplatF,
				"pgap":     *pgapF,
				"duration": duration.String(), "nvm_fence_ns": *fenceNs,
			},
			"rows": rows,
		}); err != nil {
			fatal(err)
		}
	} else if !*csvOut {
		fmt.Println("\n(prod-fence/msg: blocking persists per published message — ~1 per-message,")
		fmt.Println(" ~1/batch on the batch-publish path. cons-fence/msg mirrors it on the")
		fmt.Println(" consume side: ~1/dbatch with PollBatch, one fence per persistence domain")
		fmt.Println(" a poll dequeued from; in ack cells it is the lease record's fence.")
		fmt.Println(" ack-fence/msg: persists spent in Consumer.Ack per delivered message —")
		fmt.Println(" ~1/dbatch when each poll window is acked as a whole. redeliv: fraction")
		fmt.Println(" of deliveries that were redeliveries after -kills lease takeovers.")
		fmt.Println(" churn(f/r/s): stale-epoch acks refused / shards force-reassigned /")
		fmt.Println(" shards work-stolen across the -churn membership cycles.")
		fmt.Println(" ab/pl/po: the tail-latency modes — adaptive batch / pipelined persists /")
		fmt.Println(" event-loop poller. soj-µs: publish sojourn (arrival → durable ack)")
		fmt.Println(" p50/p99/p999 — the idle-topic tail adaptive batching attacks.")
		fmt.Println(" idle-f/poll: persists per all-empty poll — ~0 with empty-poll fence")
		fmt.Println(" elision. heap-imbal: busiest heap's persist traffic over the per-heap")
		fmt.Println(" mean — 1.0 is perfectly balanced placement. dyn-f/create: blocking")
		fmt.Println(" persists per mid-run CreateTopic — the pinned 3-fence catalog append")
		fmt.Println(" protocol plus per-shard queue initialization; 0 without -dyntopics.")
		fmt.Println(" del-f/delete: blocking persists per mid-run DeleteTopic — the pinned")
		fmt.Println(" tombstone protocol, ≤3; 0 without -deltopics. heap-f(pub/pop): blocking")
		fmt.Println(" persists per message published to / popped from the -delay/-prio heap")
		fmt.Println(" topics — ~1/batch and ~1/dbatch, heap maintenance persists nothing.")
		fmt.Println(" slots(u/f): post-run slot")
		fmt.Println(" footprint, high-water used / free-list population — steady used across")
		if *latency {
			fmt.Println(" -deltopics churn shows retired windows being recycled.")
			fmt.Println(" latency cells are p50/p99/p999 in microseconds per op: publish is one")
			fmt.Println(" Publish call, poll one non-empty Poll/PollBatch call, ack one")
			fmt.Println(" Consumer.Ack that released at least one message.)")
		} else {
			fmt.Println(" -deltopics churn shows retired windows being recycled.)")
		}
	}
}

func round3(v float64) float64 { return math.Round(v*1e3) / 1e3 }
func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }

// usQuantiles converts a (p50, p99, p999) triple from nanoseconds (the
// harness unit) to microseconds (the report unit).
func usQuantiles(p50, p99, p999 float64) (float64, float64, float64) {
	return round3(p50 / 1e3), round3(p99 / 1e3), round3(p999 / 1e3)
}

// latCell renders one compact p50/p99/p999 table cell in microseconds.
func latCell(p50, p99, p999 float64) string {
	return fmt.Sprintf("%.1f/%.1f/%.1f", p50, p99, p999)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad count %q: %w", f, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "brokerbench:", err)
	os.Exit(1)
}
