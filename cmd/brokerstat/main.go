// Command brokerstat runs one short canned broker workload with the
// observability layer enabled and dumps the resulting snapshot — per-op
// latency summaries, per-topic counters and depth, per-group shard lag
// and per-heap persist statistics — in a machine-readable format.
//
// It is the one-shot companion to cmd/brokerbench: where brokerbench
// sweeps configurations and reports derived per-message rates,
// brokerstat exposes the raw obs.Snapshot so export pipelines
// (Prometheus scrapers, JSON collectors) can be developed and smoke-
// tested against real output.
//
//	go run ./cmd/brokerstat                      # Prometheus text format
//	go run ./cmd/brokerstat -format json         # indented JSON
//	go run ./cmd/brokerstat -selfcheck           # validate both formats
//
// -selfcheck renders the snapshot in both formats into memory, checks
// the JSON round-trips through encoding/json and the Prometheus text
// passes obs.ValidatePrometheus, and exits non-zero on any failure; CI
// uses it as the export-format smoke test.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
)

func main() {
	var (
		format    = flag.String("format", "prom", "output format: prom (Prometheus text) or json")
		selfcheck = flag.Bool("selfcheck", false, "validate both export formats instead of printing one")
		duration  = flag.Duration("duration", 150*time.Millisecond, "workload duration")
		topics    = flag.Int("topics", 2, "topics in the canned workload")
		shards    = flag.Int("shards", 4, "shards per topic")
		heaps     = flag.Int("heaps", 2, "member heaps the broker spans")
		producers = flag.Int("producers", 2, "producer threads")
		consumers = flag.Int("consumers", 2, "consumer threads")
		ack       = flag.Bool("ack", true, "use acked topics and a leased group (exercises the ack op)")
		churn     = flag.Int("churn", 1, "membership-churn cycles mid-run (fills the group fenced/reassigned/stolen/scan counters; needs -ack and >= 2 consumers)")
		heapMB    = flag.Int("heapmb", 256, "per-heap arena size in MiB")
	)
	flag.Parse()
	if *format != "prom" && *format != "json" {
		fmt.Fprintf(os.Stderr, "brokerstat: unknown -format %q (want prom or json)\n", *format)
		os.Exit(2)
	}

	res, err := harness.RunBroker(harness.BrokerConfig{
		Topics: *topics, Shards: *shards, Heaps: *heaps,
		Producers: *producers, Consumers: *consumers,
		Batch: 4, DequeueBatch: 8, Ack: *ack, Churn: *churn,
		Duration: *duration, HeapBytes: int64(*heapMB) << 20,
		Observe: true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "brokerstat: workload failed: %v\n", err)
		os.Exit(1)
	}
	snap := res.Latency
	if snap == nil {
		fmt.Fprintln(os.Stderr, "brokerstat: harness returned no snapshot")
		os.Exit(1)
	}

	if *selfcheck {
		if err := check(*snap); err != nil {
			fmt.Fprintf(os.Stderr, "brokerstat: selfcheck failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("brokerstat: selfcheck ok (%d ops, %d topics, %d groups, %d heaps)\n",
			len(snap.Ops), len(snap.Topics), len(snap.Groups), len(snap.Heaps))
		return
	}

	var werr error
	if *format == "json" {
		werr = snap.WriteJSON(os.Stdout)
	} else {
		werr = snap.WritePrometheus(os.Stdout)
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "brokerstat: %v\n", werr)
		os.Exit(1)
	}
}

// check renders the snapshot in both export formats and validates each:
// the JSON must round-trip through encoding/json back into an
// obs.Snapshot, the Prometheus text must pass the package's own
// text-format validator.
func check(snap obs.Snapshot) error {
	var jbuf bytes.Buffer
	if err := snap.WriteJSON(&jbuf); err != nil {
		return fmt.Errorf("WriteJSON: %w", err)
	}
	var back obs.Snapshot
	if err := json.Unmarshal(jbuf.Bytes(), &back); err != nil {
		return fmt.Errorf("JSON does not round-trip: %w", err)
	}
	if len(back.Ops) != len(snap.Ops) || len(back.Topics) != len(snap.Topics) {
		return fmt.Errorf("JSON round-trip lost series: %d/%d ops, %d/%d topics",
			len(back.Ops), len(snap.Ops), len(back.Topics), len(snap.Topics))
	}
	var pbuf bytes.Buffer
	if err := snap.WritePrometheus(&pbuf); err != nil {
		return fmt.Errorf("WritePrometheus: %w", err)
	}
	if err := obs.ValidatePrometheus(bytes.NewReader(pbuf.Bytes())); err != nil {
		return fmt.Errorf("Prometheus text invalid: %w", err)
	}
	// The membership counters must be present in both exports whenever
	// a group was observed (zero-valued is fine — churn cycles can be
	// skipped — missing is not).
	if len(snap.Groups) > 0 {
		for _, metric := range []string{
			"broker_group_fenced_acks_total",
			"broker_group_reassigned_shards_total",
			"broker_group_stolen_shards_total",
			"broker_group_scans_total",
		} {
			if !bytes.Contains(pbuf.Bytes(), []byte(metric)) {
				return fmt.Errorf("Prometheus text missing %s", metric)
			}
		}
		if !bytes.Contains(jbuf.Bytes(), []byte(`"fenced_acks"`)) {
			return fmt.Errorf("JSON missing the group fenced_acks field")
		}
	}
	return nil
}
