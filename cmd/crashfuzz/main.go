// Command crashfuzz stress-tests durable linearizability: it runs
// concurrent workloads on a chosen queue, kills them with a simulated
// full-system crash at a random memory access, optionally crashes the
// recovery procedure itself, recovers, and checks the surviving state
// against the recorded operation history (no duplication, no loss of
// completed enqueues, per-enqueuer FIFO).
//
// -smoke is the quick CI mode: few rounds per queue, plus six
// broker iterations — a 2-heap broker crashed via a single member's
// access stream, recovered from its catalog and stamps, and audited
// for delivered-or-recovered-exactly-once; an acked broker whose
// consumer is killed mid-batch (lease takeover redelivers the unacked
// suffix) before a full-system crash, audited for exactly-once
// processing; a live-administration broker (Open) whose topics
// are created mid-traffic through the append-with-fence catalog log,
// crashed and recovered with the same exactly-once audit — topics
// whose creation returned must exist, torn creations must not; a
// membership-churn broker whose silent members are fenced by the
// expiry scanner or robbed by work-stealing, with their resurfacing
// stale-epoch acks refused, before the same full-system crash and
// exactly-once audit; and a topic-churn broker cycling topics through
// create → publish → delete on a deliberately small catalog log (so
// the cycles run through tombstones, free-list reuse and generation
// compactions), crashed anywhere — including mid-delete and
// mid-compaction — and audited: a delete that returned never
// resurrects, a torn delete leaves the topic intact, and the
// exactly-once guarantee holds over every surviving topic; and a
// heap-topic broker mixing delay and priority publishes against a
// logical clock, crashed anywhere in the entry log's push/pop
// protocol and audited — nothing delivered early, nothing twice,
// the recovered heaps pop in key order, and at most one in-flight
// pop-min window is lost.
//
// Each broker smoke runs with an event-trace-enabled observer
// (internal/obs); when an audit fails, the last trace events — the
// publishes, polls and acks leading up to the bad state — are dumped
// to stderr alongside the error.
//
// Examples:
//
//	crashfuzz -queue opt-linked -rounds 200 -threads 4 -recovery-crashes 2
//	crashfuzz -smoke
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/broker"
	"repro/internal/dheap"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/verify"
)

// traceEvents is the per-thread event-trace capacity each broker smoke
// runs with: enough to hold the operations leading up to a bad audit
// without the ring costing anything on the happy path.
const traceEvents = 512

// dumpOnFail prints the tail of a failed smoke's event trace to stderr
// so a red CI run shows the broker operations that led up to the bad
// audit, then passes the error through.
func dumpOnFail(o *obs.Observer, name string, err error) error {
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashfuzz: %s failed — last trace events:\n", name)
		o.DumpTrace(os.Stderr, 48)
	}
	return err
}

func main() {
	var (
		queue    = flag.String("queue", "all", "queue name or 'all'")
		threads  = flag.Int("threads", 4, "worker threads")
		ops      = flag.Int("ops", 500, "max operations per thread per round")
		rounds   = flag.Int("rounds", 50, "crash/recover rounds")
		seed     = flag.Int64("seed", 1, "fuzz seed")
		recovery = flag.Int("recovery-crashes", 1, "crashes injected during recovery per round")
		smoke    = flag.Bool("smoke", false, "quick mode: few rounds per queue plus one multi-heap broker iteration")
	)
	flag.Parse()
	roundsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "rounds" {
			roundsSet = true
		}
	})
	if *smoke && !roundsSet {
		*rounds = 5
	}

	var names []string
	if *queue == "all" {
		for _, in := range harness.AllQueues() {
			if in.Durable {
				names = append(names, in.Name)
			}
		}
		names = append(names, "onll")
	} else {
		names = []string{*queue}
	}

	failed := false
	for _, name := range names {
		in, ok := harness.LookupQueue(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "crashfuzz: unknown queue %q\n", name)
			os.Exit(2)
		}
		if in.Recover == nil {
			continue
		}
		err := verify.ConcurrentCrashFuzz(in, verify.FuzzConfig{
			Threads:         *threads,
			OpsPerThread:    *ops,
			Rounds:          *rounds,
			Seed:            *seed,
			RecoveryCrashes: *recovery,
		})
		if err != nil {
			fmt.Printf("%-24s FAIL: %v\n", name, err)
			failed = true
		} else {
			fmt.Printf("%-24s ok (%d rounds, %d threads, recovery crashes %d)\n",
				name, *rounds, *threads, *recovery)
		}
	}
	if *smoke {
		if err := brokerSmoke(*seed); err != nil {
			fmt.Printf("%-24s FAIL: %v\n", "broker-multiheap", err)
			failed = true
		} else {
			fmt.Printf("%-24s ok (2 heaps, crash on one member, whole-set recovery)\n", "broker-multiheap")
		}
		if err := brokerAckSmoke(*seed); err != nil {
			fmt.Printf("%-24s FAIL: %v\n", "broker-consumer-crash", err)
			failed = true
		} else {
			fmt.Printf("%-24s ok (consumer kill + lease takeover + system crash, exactly-once)\n", "broker-consumer-crash")
		}
		if err := brokerDynSmoke(*seed); err != nil {
			fmt.Printf("%-24s FAIL: %v\n", "broker-dynamic-topics", err)
			failed = true
		} else {
			fmt.Printf("%-24s ok (topics created mid-traffic, crash, catalog-log recovery, exactly-once)\n", "broker-dynamic-topics")
		}
		if err := brokerChurnSmoke(*seed); err != nil {
			fmt.Printf("%-24s FAIL: %v\n", "broker-membership-churn", err)
			failed = true
		} else {
			fmt.Printf("%-24s ok (scan fences silent members, steal + split, stale acks refused, exactly-once)\n", "broker-membership-churn")
		}
		if err := brokerDelSmoke(*seed); err != nil {
			fmt.Printf("%-24s FAIL: %v\n", "broker-topic-churn", err)
			failed = true
		} else {
			fmt.Printf("%-24s ok (topics deleted mid-traffic, tombstone + compaction recovery, no resurrection, exactly-once)\n", "broker-topic-churn")
		}
		if err := brokerDelaySmoke(*seed); err != nil {
			fmt.Printf("%-24s FAIL: %v\n", "broker-delay-topics", err)
			failed = true
		} else {
			fmt.Printf("%-24s ok (delay + priority heaps, crash, pop-min recovery, nothing early, exactly-once)\n", "broker-delay-topics")
		}
	}
	if failed {
		os.Exit(1)
	}
}

// brokerSmoke is one multi-heap broker crash/recover/audit iteration:
// a 2-heap broker takes mixed publishes and deliveries until a crash
// scheduled on one member's access stream downs the whole set; the
// broker is recovered from heap 0's catalog plus heap 1's membership
// stamp and audited — every acknowledged publish is delivered before
// the crash or recovered after it, exactly once, in per-shard order.
func brokerSmoke(seed int64) error {
	const threads = 2
	o := obs.New(obs.Config{Threads: threads, TraceEvents: traceEvents})
	return dumpOnFail(o, "broker-multiheap", brokerSmokeRun(seed, threads, o))
}

func brokerSmokeRun(seed int64, threads int, o *obs.Observer) error {
	rng := rand.New(rand.NewSource(seed))
	hs := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: threads})
	b, err := broker.NewSet(hs, broker.Config{
		Topics: []broker.TopicConfig{
			{Name: "events", Shards: 4},
			{Name: "jobs", Shards: 2, MaxPayload: 48},
		},
		Threads:  threads,
		Observer: o,
	})
	if err != nil {
		return err
	}
	g, err := b.NewGroup([]string{"events", "jobs"}, 1)
	if err != nil {
		return err
	}
	payload := func(id uint64) []byte {
		p := make([]byte, 8+int(id%40))
		copy(p, broker.U64(id))
		for i := 8; i < len(p); i++ {
			p[i] = byte(id) ^ byte(i)
		}
		return p
	}
	hs.Heap(rng.Intn(2)).ScheduleCrashAtAccess(int64(rng.Intn(30_000)) + 5_000)

	var acked []uint64
	delivered := map[uint64]bool{}
	cons := g.Consumer(0)
	for id := uint64(1); ; id++ {
		crashed := pmem.Protect(func() {
			if id%3 == 0 {
				b.Topic("jobs").Publish(0, payload(id))
			} else {
				b.Topic("events").Publish(0, broker.U64(id))
			}
		})
		if crashed {
			break
		}
		acked = append(acked, id)
		if id%2 == 0 {
			var got []broker.Message
			if pmem.Protect(func() { got = cons.PollBatch(1, 4) }) {
				break
			}
			for _, m := range got {
				mid := broker.AsU64(m.Payload[:8])
				if delivered[mid] {
					return fmt.Errorf("message %d delivered twice before the crash", mid)
				}
				delivered[mid] = true
			}
		}
	}
	if !hs.Crashed() {
		return fmt.Errorf("crash never fired")
	}
	hs.FinalizeCrash(rng)
	hs.Restart()

	r, err := broker.RecoverSet(hs, threads)
	if err != nil {
		return err
	}
	seen := map[uint64]bool{}
	for id := range delivered {
		seen[id] = true
	}
	for _, t := range r.Topics() {
		for s := 0; s < t.Shards(); s++ {
			last := uint64(0)
			for {
				p, ok := t.DequeueShard(0, s)
				if !ok {
					break
				}
				id := broker.AsU64(p[:8])
				if seen[id] {
					return fmt.Errorf("message %d duplicated across crash", id)
				}
				seen[id] = true
				if id <= last {
					return fmt.Errorf("shard %s/%d out of order: %d after %d", t.Name(), s, id, last)
				}
				last = id
			}
		}
	}
	lost := 0
	for _, id := range acked {
		if !seen[id] {
			lost++
		}
	}
	// The single consumer may lose at most its unacknowledged in-flight
	// poll window (4 messages).
	if lost > 4 {
		return fmt.Errorf("%d acknowledged messages lost (allowance 4)", lost)
	}
	return nil
}

// brokerDynSmoke is one live-administration iteration: a broker
// brought up empty with Open takes two topics at creation time and
// more mid-traffic (CreateTopic interleaved with publishes and
// polls), until a crash scheduled on one member's access stream downs
// the 2-heap set — sometimes inside the creation protocol itself. The
// broker is recovered by Open from the catalog log alone and audited:
// every topic whose CreateTopic returned exists, and every
// acknowledged publish — to initial and dynamic topics alike — is
// delivered before the crash or recovered after it, exactly once, in
// per-shard order.
func brokerDynSmoke(seed int64) error {
	const threads = 2
	o := obs.New(obs.Config{Threads: threads, TraceEvents: traceEvents})
	return dumpOnFail(o, "broker-dynamic-topics", brokerDynSmokeRun(seed, threads, o))
}

func brokerDynSmokeRun(seed int64, threads int, o *obs.Observer) error {
	rng := rand.New(rand.NewSource(seed + 2))
	hs := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: threads})
	b, err := broker.Open(hs, broker.Options{Threads: threads, Observer: o})
	if err != nil {
		return err
	}
	if _, err := b.CreateTopic(0, broker.TopicConfig{Name: "events", Shards: 4}); err != nil {
		return err
	}
	if _, err := b.CreateTopic(0, broker.TopicConfig{Name: "jobs", Shards: 2, MaxPayload: 48}); err != nil {
		return err
	}
	g, err := b.NewGroup([]string{"events", "jobs"}, 1)
	if err != nil {
		return err
	}
	payload := func(id uint64) []byte {
		p := make([]byte, 8+int(id%40))
		copy(p, broker.U64(id))
		for i := 8; i < len(p); i++ {
			p[i] = byte(id) ^ byte(i)
		}
		return p
	}
	hs.Heap(rng.Intn(2)).ScheduleCrashAtAccess(int64(rng.Intn(40_000)) + 10_000)

	var acked []uint64
	var dynCreated []string
	delivered := map[uint64]bool{}
	cons := g.Consumer(0)
	nextDyn := 0
	for id := uint64(1); ; id++ {
		crashed := pmem.Protect(func() {
			if id%3 == 0 {
				b.Topic("jobs").Publish(0, payload(id))
			} else {
				b.Topic("events").Publish(0, broker.U64(id))
			}
		})
		if crashed {
			break
		}
		acked = append(acked, id)
		// Every ~40 publishes, create a fresh topic on the live broker
		// and seed it; its messages join the same audit space.
		if id%40 == 0 {
			name := fmt.Sprintf("dyn-%d", nextDyn)
			var cerr error
			if pmem.Protect(func() { _, cerr = b.CreateTopic(0, broker.TopicConfig{Name: name, Shards: 1 + nextDyn%2}) }) {
				break
			}
			if cerr != nil {
				return fmt.Errorf("CreateTopic(%s): %v", name, cerr)
			}
			dynCreated = append(dynCreated, name)
			nextDyn++
			topic := b.Topic(name)
			stop := false
			for m := uint64(1); m <= 10; m++ {
				did := uint64(1000+nextDyn)<<32 | m
				if pmem.Protect(func() { topic.Publish(0, broker.U64(did)) }) {
					stop = true
					break
				}
				acked = append(acked, did)
			}
			if stop {
				break
			}
			if err := g.Subscribe(1, name); err != nil {
				return fmt.Errorf("Subscribe(%s): %v", name, err)
			}
		}
		if id%2 == 0 {
			var got []broker.Message
			if pmem.Protect(func() { got = cons.PollBatch(1, 4) }) {
				break
			}
			for _, m := range got {
				mid := broker.AsU64(m.Payload[:8])
				if delivered[mid] {
					return fmt.Errorf("message %d delivered twice before the crash", mid)
				}
				delivered[mid] = true
			}
		}
	}
	if !hs.Crashed() {
		return fmt.Errorf("crash never fired")
	}
	hs.FinalizeCrash(rng)
	hs.Restart()

	// Recovery reuses the same observer: RegisterTopic dedupes by name,
	// so the counters and the event trace span the crash.
	r, err := broker.Open(hs, broker.Options{Threads: threads, Observer: o})
	if err != nil {
		return err
	}
	for _, name := range dynCreated {
		if r.Topic(name) == nil {
			return fmt.Errorf("topic %q was created (call returned) but did not recover", name)
		}
	}
	seen := map[uint64]bool{}
	for id := range delivered {
		seen[id] = true
	}
	for _, t := range r.Topics() {
		for s := 0; s < t.Shards(); s++ {
			last := uint64(0)
			for {
				p, ok := t.DequeueShard(0, s)
				if !ok {
					break
				}
				id := broker.AsU64(p[:8])
				if seen[id] {
					return fmt.Errorf("message %d duplicated across crash", id)
				}
				seen[id] = true
				if id <= last {
					return fmt.Errorf("shard %s/%d out of order: %d after %d", t.Name(), s, id, last)
				}
				last = id
			}
		}
	}
	lost := 0
	for _, id := range acked {
		if !seen[id] {
			lost++
		}
	}
	// The single consumer may lose at most its unacknowledged in-flight
	// poll window (4 messages).
	if lost > 4 {
		return fmt.Errorf("%d acknowledged messages lost (allowance 4)", lost)
	}
	return nil
}

// brokerDelSmoke is one topic-churn iteration: a broker brought up
// empty with Open and a deliberately small catalog log cycles scratch
// topics through create → publish → partial drain → delete while the
// static topics take traffic, with an occasional explicit compaction;
// the tiny log also forces automatic compactions, so tombstones,
// free-list window reuse and generation flips all run under fire. The
// crash lands anywhere — including between a tombstone's append and
// its anchor stamp, and between a new generation's fence and its
// anchor flip. The audit: a delete whose call returned never
// resurrects, a topic created and never deleted always recovers, a
// torn delete may land either way, and every acknowledged publish to
// a surviving topic is delivered or recovered exactly once, in order.
func brokerDelSmoke(seed int64) error {
	const threads = 2
	o := obs.New(obs.Config{Threads: threads, TraceEvents: traceEvents})
	return dumpOnFail(o, "broker-topic-churn", brokerDelSmokeRun(seed, threads, o))
}

func brokerDelSmokeRun(seed int64, threads int, o *obs.Observer) error {
	rng := rand.New(rand.NewSource(seed + 4))
	hs := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: threads})
	// 64 record-space lines: a handful of churn cycles fill the log, so
	// deletes trigger the auto-compaction path mid-traffic.
	b, err := broker.Open(hs, broker.Options{Threads: threads, CatalogLines: 64, Observer: o})
	if err != nil {
		return err
	}
	if _, err := b.CreateTopic(0, broker.TopicConfig{Name: "events", Shards: 4}); err != nil {
		return err
	}
	if _, err := b.CreateTopic(0, broker.TopicConfig{Name: "jobs", Shards: 2, MaxPayload: 48}); err != nil {
		return err
	}
	g, err := b.NewGroup([]string{"events", "jobs"}, 1)
	if err != nil {
		return err
	}
	payload := func(id uint64) []byte {
		p := make([]byte, 8+int(id%40))
		copy(p, broker.U64(id))
		for i := 8; i < len(p); i++ {
			p[i] = byte(id) ^ byte(i)
		}
		return p
	}
	hs.Heap(rng.Intn(2)).ScheduleCrashAtAccess(int64(rng.Intn(40_000)) + 10_000)

	type churn struct {
		created        bool
		deleteAttempt  bool
		deleteReturned bool
		acked          []uint64
	}
	var (
		acked     []uint64
		cyclesRun []*churn
		delivered = map[uint64]bool{}
	)
	cons := g.Consumer(0)
	nextDel := 0
	pendingLive := -1 // index of the one cycle allowed to outlive its own turn
	for id := uint64(1); ; id++ {
		crashed := pmem.Protect(func() {
			if id%3 == 0 {
				b.Topic("jobs").Publish(0, payload(id))
			} else {
				b.Topic("events").Publish(0, broker.U64(id))
			}
		})
		if crashed {
			break
		}
		acked = append(acked, id)
		// Every ~30 publishes, run one churn cycle on the live broker.
		if id%30 == 0 {
			// Retire last round's survivor first, so live churn records
			// never accumulate past one — the small log must fill with
			// tombstone debris, not survivors.
			if pendingLive >= 0 {
				lst := cyclesRun[pendingLive]
				lname := fmt.Sprintf("del-%d", pendingLive)
				pendingLive = -1
				lst.deleteAttempt = true
				var lerr error
				if pmem.Protect(func() { lerr = b.DeleteTopic(0, lname) }) {
					break
				}
				if lerr != nil {
					return fmt.Errorf("DeleteTopic(%s): %v", lname, lerr)
				}
				lst.deleteReturned = true
			}
			st := &churn{}
			cyclesRun = append(cyclesRun, st)
			name := fmt.Sprintf("del-%d", nextDel)
			nextDel++
			var cerr error
			if pmem.Protect(func() { _, cerr = b.CreateTopic(0, broker.TopicConfig{Name: name, Shards: 1 + nextDel%2}) }) {
				break
			}
			if cerr != nil {
				return fmt.Errorf("CreateTopic(%s): %v", name, cerr)
			}
			st.created = true
			topic := b.Topic(name)
			stop := false
			for m := uint64(1); m <= 8; m++ {
				did := uint64(2000+nextDel)<<32 | m
				if pmem.Protect(func() { topic.Publish(0, broker.U64(did)) }) {
					stop = true
					break
				}
				st.acked = append(st.acked, did)
			}
			if stop {
				break
			}
			// Drain a prefix so delivered, dropped and recovered
			// populations all appear in the audit.
			for k := 0; k < 3; k++ {
				var p []byte
				var ok bool
				if pmem.Protect(func() { p, ok = topic.DequeueShard(1, 0) }) {
					stop = true
					break
				}
				if !ok {
					break
				}
				delivered[broker.AsU64(p[:8])] = true
			}
			if stop {
				break
			}
			if nextDel%4 == 0 {
				var kerr error
				if pmem.Protect(func() { kerr = b.CompactCatalog(0, 0) }) {
					break
				}
				if kerr != nil {
					return fmt.Errorf("CompactCatalog: %v", kerr)
				}
			}
			if nextDel%5 == 0 {
				pendingLive = len(cyclesRun) - 1 // let this one live a round
				continue
			}
			st.deleteAttempt = true
			var derr error
			if pmem.Protect(func() { derr = b.DeleteTopic(0, name) }) {
				break // torn delete: either outcome is legal
			}
			if derr != nil {
				return fmt.Errorf("DeleteTopic(%s): %v", name, derr)
			}
			st.deleteReturned = true
		}
		if id%2 == 0 {
			var got []broker.Message
			if pmem.Protect(func() { got = cons.PollBatch(1, 4) }) {
				break
			}
			for _, m := range got {
				mid := broker.AsU64(m.Payload[:8])
				if delivered[mid] {
					return fmt.Errorf("message %d delivered twice before the crash", mid)
				}
				delivered[mid] = true
			}
		}
	}
	if !hs.Crashed() {
		return fmt.Errorf("crash never fired")
	}
	hs.FinalizeCrash(rng)
	hs.Restart()

	// Open replays tombstones and picks the live generation; its
	// allocator simulation rejects any window overlap outright.
	r, err := broker.Open(hs, broker.Options{Threads: threads, Observer: o})
	if err != nil {
		return err
	}
	for d, st := range cyclesRun {
		name := fmt.Sprintf("del-%d", d)
		exists := r.Topic(name) != nil
		switch {
		case st.deleteReturned && exists:
			return fmt.Errorf("topic %s resurrected: DeleteTopic returned, yet it recovered", name)
		case st.created && !st.deleteAttempt && !exists:
			return fmt.Errorf("topic %s lost: created and never deleted, yet it did not recover", name)
		}
	}
	seen := map[uint64]bool{}
	for id := range delivered {
		seen[id] = true
	}
	for _, t := range r.Topics() {
		for s := 0; s < t.Shards(); s++ {
			last := uint64(0)
			for {
				p, ok := t.DequeueShard(0, s)
				if !ok {
					break
				}
				id := broker.AsU64(p[:8])
				if seen[id] {
					return fmt.Errorf("message %d duplicated across crash", id)
				}
				seen[id] = true
				if id <= last {
					return fmt.Errorf("shard %s/%d out of order: %d after %d", t.Name(), s, id, last)
				}
				last = id
			}
		}
	}
	lost := 0
	for _, id := range acked {
		if !seen[id] {
			lost++
		}
	}
	// A deleted topic's undelivered messages were dropped with it by
	// design: only surviving topics' churn publishes join the loss
	// audit (their deliveries were duplicate-checked above either way).
	for d, st := range cyclesRun {
		if r.Topic(fmt.Sprintf("del-%d", d)) == nil {
			continue
		}
		for _, id := range st.acked {
			if !seen[id] {
				lost++
			}
		}
	}
	// The single consumer may lose at most its unacknowledged in-flight
	// poll window (4), plus the churn drain's window (3).
	if lost > 7 {
		return fmt.Errorf("%d acknowledged messages lost (allowance 7)", lost)
	}
	return nil
}

// brokerDelaySmoke is one heap-topic iteration: a 2-heap broker
// brought up empty with Open carries a delay topic and a priority
// topic; a sequential driver advances a logical clock, publishing
// timers with near-future deadlines and jobs with random ranks, and
// every third tick drains one topic's ready backlog, until a crash
// scheduled on one member's access stream downs the set — anywhere
// in the entry log's push or pop-min protocol. The broker is
// recovered by Open and audited: both topics come back with their
// kinds, the delay heap gates everything at time zero, nothing was
// delivered before its deadline or delivered twice, the recovered
// backlog pops in nondecreasing key order with intact payloads, and
// at most one in-flight pop-min window is lost.
func brokerDelaySmoke(seed int64) error {
	const threads = 2
	o := obs.New(obs.Config{Threads: threads, TraceEvents: traceEvents})
	return dumpOnFail(o, "broker-delay-topics", brokerDelaySmokeRun(seed, threads, o))
}

func brokerDelaySmokeRun(seed int64, threads int, o *obs.Observer) error {
	const popWindow = 6
	rng := rand.New(rand.NewSource(seed + 5))
	hs := pmem.NewSet(2, pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: threads})
	b, err := broker.Open(hs, broker.Options{Threads: threads, Observer: o})
	if err != nil {
		return err
	}
	if _, err := b.CreateTopic(0, broker.TopicConfig{Name: "timers", Kind: broker.KindDelay, Shards: 1, MaxPayload: 24}); err != nil {
		return err
	}
	if _, err := b.CreateTopic(0, broker.TopicConfig{Name: "urgent", Kind: broker.KindPriority, Shards: 1, MaxPayload: 24}); err != nil {
		return err
	}
	// 24-byte payload: id, key, and an integrity word binding the two,
	// so a torn or misdirected entry cannot masquerade as a delivery.
	payload := func(id, key uint64) []byte {
		p := make([]byte, 24)
		copy(p, broker.U64(id))
		copy(p[8:], broker.U64(key))
		copy(p[16:], broker.U64(id^key^0xd11a))
		return p
	}
	hs.Heap(rng.Intn(2)).ScheduleCrashAtAccess(int64(rng.Intn(30_000)) + 5_000)

	clock := uint64(1)
	acked := map[uint64]bool{}
	delivered := map[uint64]bool{}
	timers, urgent := b.Topic("timers"), b.Topic("urgent")
	for id := uint64(1); ; id++ {
		clock++
		var perr error
		crashed := pmem.Protect(func() {
			if id%2 == 0 {
				deadline := clock + uint64(rng.Intn(48))
				perr = timers.PublishAt(1, payload(id, deadline), deadline)
			} else {
				rank := uint64(rng.Intn(500))
				perr = urgent.PublishPriority(1, payload(id, rank), rank)
			}
		})
		if crashed {
			break
		}
		switch {
		case perr == nil:
			acked[id] = true
		case errors.Is(perr, dheap.ErrFull):
			// Arena backpressure: the publish never happened; the drain
			// below frees slots.
		default:
			return fmt.Errorf("publish %d: %v", id, perr)
		}
		if id%3 == 0 {
			t := timers
			if id%6 == 0 {
				t = urgent
			}
			now := clock
			var got [][]byte
			if pmem.Protect(func() { got, perr = t.DequeueReadyBatch(0, now, popWindow) }) {
				break
			}
			if perr != nil {
				return fmt.Errorf("dequeue: %v", perr)
			}
			for _, p := range got {
				mid, mkey := broker.AsU64(p[:8]), broker.AsU64(p[8:16])
				if broker.AsU64(p[16:24]) != mid^mkey^0xd11a {
					return fmt.Errorf("message %d delivered corrupted", mid)
				}
				if delivered[mid] {
					return fmt.Errorf("message %d delivered twice before the crash", mid)
				}
				delivered[mid] = true
				if t == timers && mkey > now {
					return fmt.Errorf("message %d delivered %d ticks before its deadline", mid, mkey-now)
				}
			}
		}
	}
	if !hs.Crashed() {
		return fmt.Errorf("crash never fired")
	}
	hs.FinalizeCrash(rng)
	hs.Restart()

	r, err := broker.Open(hs, broker.Options{Observer: o})
	if err != nil {
		return err
	}
	rt, ru := r.Topic("timers"), r.Topic("urgent")
	if rt == nil || ru == nil {
		return fmt.Errorf("heap topics did not recover")
	}
	if rt.Kind() != broker.KindDelay || ru.Kind() != broker.KindPriority {
		return fmt.Errorf("heap topics recovered with wrong kinds (%v, %v)", rt.Kind(), ru.Kind())
	}
	// Every surviving deadline is in the future of time zero: the
	// recovered delay heap must gate its whole backlog.
	if got, derr := rt.DequeueReadyBatch(0, 0, popWindow); derr != nil {
		return derr
	} else if len(got) != 0 {
		return fmt.Errorf("recovered delay topic delivered %d messages at time zero", len(got))
	}
	seen := map[uint64]bool{}
	for id := range delivered {
		seen[id] = true
	}
	for _, t := range []*broker.Topic{rt, ru} {
		last := uint64(0)
		for {
			got, derr := t.DequeueReadyBatch(0, ^uint64(0), popWindow)
			if derr != nil {
				return derr
			}
			if len(got) == 0 {
				break
			}
			for _, p := range got {
				mid, mkey := broker.AsU64(p[:8]), broker.AsU64(p[8:16])
				if broker.AsU64(p[16:24]) != mid^mkey^0xd11a {
					return fmt.Errorf("recovered message %d corrupted", mid)
				}
				if seen[mid] {
					return fmt.Errorf("message %d duplicated across crash", mid)
				}
				seen[mid] = true
				if mkey < last {
					return fmt.Errorf("%s popped out of key order: %d after %d", t.Name(), mkey, last)
				}
				last = mkey
			}
		}
	}
	lost := 0
	for id := range acked {
		if !seen[id] {
			lost++
		}
	}
	// Only a pop-min batch cut off between its consumed stamps and the
	// delivery may drop messages: at most one window.
	if lost > popWindow {
		return fmt.Errorf("%d acknowledged publishes lost (allowance %d)", lost, popWindow)
	}
	return nil
}

// brokerAckSmoke is one exactly-once iteration on an acked broker: a
// producer and two acked consumers interleave; consumer 1 "crashes"
// mid-batch (delivered, never acknowledged), its lease expires and
// consumer 0 adopts its shards, redelivering the unacked suffix; a
// full-system crash scheduled on a random access then downs the heap,
// the broker is recovered and a fresh group drains the backlog. The
// audit demands that no message is ever acknowledged twice and that
// every acknowledged publish is processed exactly once (up to the
// poll-window observer gap of an Ack cut off between its fence and
// the record).
func brokerAckSmoke(seed int64) error {
	const threads = 3 // tid 0: producer + recovery drain; 1, 2: consumers
	o := obs.New(obs.Config{Threads: threads, TraceEvents: traceEvents})
	return dumpOnFail(o, "broker-consumer-crash", brokerAckSmokeRun(seed, threads, o))
}

func brokerAckSmokeRun(seed int64, threads int, o *obs.Observer) error {
	const window = 4
	rng := rand.New(rand.NewSource(seed + 1))
	h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: threads})
	b, err := broker.New(h, broker.Config{
		Topics: []broker.TopicConfig{
			{Name: "events", Shards: 4, Acked: true},
			{Name: "jobs", Shards: 2, MaxPayload: 48, Acked: true},
		},
		Threads:   threads,
		AckGroups: 1,
		Observer:  o,
	})
	if err != nil {
		return err
	}
	var clock uint64
	g, err := b.NewGroupAcked([]string{"events", "jobs"}, 2, broker.LeaseConfig{
		TTL: 10, Now: func() uint64 { return clock },
	})
	if err != nil {
		return err
	}
	payload := func(id uint64) []byte {
		p := make([]byte, 8+int(id%40))
		copy(p, broker.U64(id))
		for i := 8; i < len(p); i++ {
			p[i] = byte(id) ^ byte(i)
		}
		return p
	}
	h.ScheduleCrashAtAccess(int64(rng.Intn(40_000)) + 10_000)

	var acked []uint64
	processed := map[uint64]string{}
	killed := false
	victimWindow := 0
	record := func(ms []broker.Message, who string) error {
		for _, m := range ms {
			id := broker.AsU64(m.Payload[:8])
			if prev, dup := processed[id]; dup {
				return fmt.Errorf("message %d acknowledged twice (%s, then %s)", id, prev, who)
			}
			processed[id] = who
		}
		return nil
	}
	for id := uint64(1); ; id++ {
		if pmem.Protect(func() {
			if id%3 == 0 {
				b.Topic("jobs").Publish(0, payload(id))
			} else {
				b.Topic("events").Publish(0, broker.U64(id))
			}
		}) {
			break
		}
		acked = append(acked, id)
		clock++
		// Consumer 0: poll + ack, the healthy member.
		if id%2 == 0 {
			var ms []broker.Message
			if pmem.Protect(func() { ms = g.Consumer(0).PollBatch(1, window) }) {
				break
			}
			if len(ms) > 0 {
				if pmem.Protect(func() { g.Consumer(0).Ack(1) }) {
					break // ack may or may not be durable: observer gap
				}
				if err := record(ms, "consumer 0"); err != nil {
					return err
				}
			}
		}
		// Consumer 1: delivers one window, never acks, then "crashes";
		// its lease expires and consumer 0 adopts the shards.
		if !killed && id == 40 {
			var ms []broker.Message
			if pmem.Protect(func() { ms = g.Consumer(1).PollBatch(2, window) }) {
				break
			}
			victimWindow = len(ms)
			killed = true
			clock += 100 // the victim goes silent; its lease expires
			var moved int
			var aerr error
			if pmem.Protect(func() { moved, aerr = g.Adopt(2, 1, 0) }) {
				break
			}
			if aerr != nil {
				return fmt.Errorf("takeover failed: %v", aerr)
			}
			if moved < victimWindow {
				return fmt.Errorf("takeover moved %d redeliveries, want at least the victim's window %d", moved, victimWindow)
			}
		}
	}
	if !h.Crashed() {
		h.CrashNow()
	}
	h.FinalizeCrash(rng)
	h.Restart()

	r, err := broker.Recover(h, threads)
	if err != nil {
		return err
	}
	var clock2 uint64
	g2, err := r.NewGroupAcked([]string{"events", "jobs"}, 1, broker.LeaseConfig{
		TTL: 10, Now: func() uint64 { return clock2 },
	})
	if err != nil {
		return err
	}
	for {
		ms := g2.Consumer(0).PollBatch(0, 8)
		if len(ms) == 0 {
			break
		}
		g2.Consumer(0).Ack(0)
		if err := record(ms, "post-crash drain"); err != nil {
			return err
		}
	}
	lost := 0
	for _, id := range acked {
		if _, ok := processed[id]; !ok {
			lost++
		}
	}
	// Only an Ack whose fence landed right before the crash cut off the
	// record may go unobserved: at most one window per consumer.
	if lost > 2*window {
		return fmt.Errorf("%d acknowledged publishes never processed (allowance %d)", lost, 2*window)
	}
	return nil
}

// brokerChurnSmoke is one membership-churn iteration on an acked
// broker: members go silent holding in-flight windows and the expiry
// scanner fences them — bumping their shards' epochs and splitting
// them across the survivors — or a healthy member work-steals their
// expired shards one at a time; the silent members then resurface and
// their stale-epoch acknowledgments must be refused with ErrFenced. A
// full-system crash downs the heap mid-traffic and a fresh group
// drains the backlog. The audit demands exactly-once processing and
// at least one provably refused stale ack.
func brokerChurnSmoke(seed int64) error {
	const threads = 4 // tid 0: producer + recovery drain; 1..3: consumers
	o := obs.New(obs.Config{Threads: threads, TraceEvents: traceEvents})
	return dumpOnFail(o, "broker-membership-churn", brokerChurnSmokeRun(seed, threads, o))
}

func brokerChurnSmokeRun(seed int64, threads int, o *obs.Observer) error {
	const window = 4
	rng := rand.New(rand.NewSource(seed + 3))
	h := pmem.New(pmem.Config{Bytes: 64 << 20, Mode: pmem.ModeCrash, MaxThreads: threads})
	b, err := broker.New(h, broker.Config{
		Topics: []broker.TopicConfig{
			{Name: "events", Shards: 4, Acked: true},
			{Name: "jobs", Shards: 2, MaxPayload: 48, Acked: true},
		},
		Threads:   threads,
		AckGroups: 1,
		Observer:  o,
	})
	if err != nil {
		return err
	}
	var clock uint64
	g, err := b.NewGroupAcked([]string{"events", "jobs"}, 3, broker.LeaseConfig{
		TTL: 10, Now: func() uint64 { return clock },
	})
	if err != nil {
		return err
	}
	payload := func(id uint64) []byte {
		p := make([]byte, 8+int(id%40))
		copy(p, broker.U64(id))
		for i := 8; i < len(p); i++ {
			p[i] = byte(id) ^ byte(i)
		}
		return p
	}
	h.ScheduleCrashAtAccess(int64(rng.Intn(40_000)) + 10_000)

	var acked []uint64
	staleRefused := 0
	processed := map[uint64]string{}
	record := func(ms []broker.Message, who string) error {
		for _, m := range ms {
			id := broker.AsU64(m.Payload[:8])
			if prev, dup := processed[id]; dup {
				return fmt.Errorf("message %d acknowledged twice (%s, then %s)", id, prev, who)
			}
			processed[id] = who
		}
		return nil
	}
	// ackOrRefuse acknowledges one member's window; a refusal on the
	// fencing path drops the window (it belongs to whoever took the
	// shards) instead of recording it.
	ackOrRefuse := func(c int, ms []broker.Message) error {
		var aerr error
		if pmem.Protect(func() { _, aerr = g.Consumer(c).Ack(c + 1) }) {
			return nil // ack may or may not be durable: observer gap
		}
		if errors.Is(aerr, broker.ErrFenced) {
			staleRefused++
			return nil
		}
		return record(ms, fmt.Sprintf("consumer %d", c))
	}
	churned := false
	for id := uint64(1); ; id++ {
		if pmem.Protect(func() {
			if id%3 == 0 {
				b.Topic("jobs").Publish(0, payload(id))
			} else {
				b.Topic("events").Publish(0, broker.U64(id))
			}
		}) {
			break
		}
		acked = append(acked, id)
		clock++
		// Consumer 0: poll + ack, the always-healthy member.
		if id%2 == 0 {
			var ms []broker.Message
			if pmem.Protect(func() { ms = g.Consumer(0).PollBatch(1, window) }) {
				break
			}
			if len(ms) > 0 {
				if err := ackOrRefuse(0, ms); err != nil {
					return err
				}
			}
		}
		// The churn episode: members 1 and 2 each deliver a window and
		// go silent; past their deadlines, member 2's expired shards are
		// work-stolen one at a time and a scan fences member 1 and
		// splits its shards across the survivors. Both then resurface
		// and their stale acknowledgments must be refused.
		if !churned && id == 40 {
			churned = true
			var ms1, ms2 []broker.Message
			if pmem.Protect(func() { ms1 = g.Consumer(1).PollBatch(2, window) }) {
				break
			}
			if pmem.Protect(func() { ms2 = g.Consumer(2).PollBatch(3, window) }) {
				break
			}
			if len(ms1) == 0 || len(ms2) == 0 {
				return fmt.Errorf("churn victims polled empty windows (%d, %d)", len(ms1), len(ms2))
			}
			clock += 100 // both go silent; every lease deadline passes
			stop := false
			for {
				var took bool
				var serr error
				if pmem.Protect(func() { took, _, serr = g.Consumer(0).Steal(1) }) {
					stop = true
					break
				}
				if serr != nil {
					return fmt.Errorf("steal failed: %v", serr)
				}
				if !took {
					break
				}
			}
			if stop {
				break
			}
			var rep broker.ScanReport
			var scerr error
			if pmem.Protect(func() { rep, scerr = g.Scan(1, clock) }) {
				break
			}
			if scerr != nil {
				return fmt.Errorf("scan failed: %v", scerr)
			}
			_ = rep
			// The resurfacing members' stale acks must be refused: the
			// stealing and the scan displaced their windows.
			var a1, a2 error
			if pmem.Protect(func() { _, a1 = g.Consumer(1).Ack(2) }) {
				break
			}
			if pmem.Protect(func() { _, a2 = g.Consumer(2).Ack(3) }) {
				break
			}
			for i, aerr := range []error{a1, a2} {
				if !errors.Is(aerr, broker.ErrFenced) {
					return fmt.Errorf("displaced consumer %d's ack returned %v, want ErrFenced", i+1, aerr)
				}
				staleRefused++
			}
		}
	}
	if !h.Crashed() {
		h.CrashNow()
	}
	h.FinalizeCrash(rng)
	h.Restart()

	r, err := broker.Recover(h, threads)
	if err != nil {
		return err
	}
	var clock2 uint64
	g2, err := r.NewGroupAcked([]string{"events", "jobs"}, 1, broker.LeaseConfig{
		TTL: 10, Now: func() uint64 { return clock2 },
	})
	if err != nil {
		return err
	}
	for {
		ms := g2.Consumer(0).PollBatch(0, 8)
		if len(ms) == 0 {
			break
		}
		g2.Consumer(0).Ack(0)
		if err := record(ms, "post-crash drain"); err != nil {
			return err
		}
	}
	if churned && staleRefused == 0 {
		return fmt.Errorf("churn ran but no stale-epoch ack was refused")
	}
	lost := 0
	for _, id := range acked {
		if _, ok := processed[id]; !ok {
			lost++
		}
	}
	// Only an Ack whose fence landed right before the crash cut off the
	// record may go unobserved: at most one window per consumer.
	if lost > 3*window {
		return fmt.Errorf("%d acknowledged publishes never processed (allowance %d)", lost, 3*window)
	}
	return nil
}
