// Command crashfuzz stress-tests durable linearizability: it runs
// concurrent workloads on a chosen queue, kills them with a simulated
// full-system crash at a random memory access, optionally crashes the
// recovery procedure itself, recovers, and checks the surviving state
// against the recorded operation history (no duplication, no loss of
// completed enqueues, per-enqueuer FIFO).
//
// Example:
//
//	crashfuzz -queue opt-linked -rounds 200 -threads 4 -recovery-crashes 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/verify"
)

func main() {
	var (
		queue    = flag.String("queue", "all", "queue name or 'all'")
		threads  = flag.Int("threads", 4, "worker threads")
		ops      = flag.Int("ops", 500, "max operations per thread per round")
		rounds   = flag.Int("rounds", 50, "crash/recover rounds")
		seed     = flag.Int64("seed", 1, "fuzz seed")
		recovery = flag.Int("recovery-crashes", 1, "crashes injected during recovery per round")
	)
	flag.Parse()

	var names []string
	if *queue == "all" {
		for _, in := range harness.AllQueues() {
			if in.Durable {
				names = append(names, in.Name)
			}
		}
		names = append(names, "onll")
	} else {
		names = []string{*queue}
	}

	failed := false
	for _, name := range names {
		in, ok := harness.LookupQueue(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "crashfuzz: unknown queue %q\n", name)
			os.Exit(2)
		}
		if in.Recover == nil {
			continue
		}
		err := verify.ConcurrentCrashFuzz(in, verify.FuzzConfig{
			Threads:         *threads,
			OpsPerThread:    *ops,
			Rounds:          *rounds,
			Seed:            *seed,
			RecoveryCrashes: *recovery,
		})
		if err != nil {
			fmt.Printf("%-24s FAIL: %v\n", name, err)
			failed = true
		} else {
			fmt.Printf("%-24s ok (%d rounds, %d threads, recovery crashes %d)\n",
				name, *rounds, *threads, *recovery)
		}
	}
	if failed {
		os.Exit(1)
	}
}
